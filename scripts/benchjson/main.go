// Command benchjson converts `go test -bench` output on stdin into the
// repository's BENCH_sim.json document. If an existing document is given
// with -prev, its "baseline" section (and note) is carried forward, so the
// file keeps the before/after pair: the frozen pre-optimization numbers
// and the freshly measured ones.
//
// With -compare FILE it instead diffs the fresh numbers on stdin against
// FILE's "current" section and prints a per-benchmark delta table; a
// gated benchmark (-gate, default EndToEndSimulation) whose ns/op
// regressed beyond -threshold percent makes it exit non-zero. Machines
// differ, so the gate is meant for same-machine before/after runs — CI
// uses it as an informational tripwire, not a hard fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurements.
type Entry struct {
	// Name is the benchmark name without the Benchmark prefix and -P
	// GOMAXPROCS suffix.
	Name string `json:"name"`
	// Runs is b.N, the iteration count the timing is averaged over.
	Runs int64 `json:"runs"`
	// Metrics maps unit → value per op, e.g. "ns/op", "allocs/op".
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the BENCH_sim.json layout.
type Doc struct {
	Schema   string  `json:"schema"`
	Note     string  `json:"note,omitempty"`
	Go       string  `json:"go"`
	Arch     string  `json:"arch"`
	Baseline []Entry `json:"baseline,omitempty"`
	Current  []Entry `json:"current"`
}

func main() {
	prev := flag.String("prev", "", "existing BENCH_sim.json whose baseline section is preserved")
	compare := flag.String("compare", "", "BENCH_sim.json to diff fresh stdin numbers against (compare mode)")
	gate := flag.String("gate", "EndToEndSimulation", "compare mode: benchmark whose regression fails the run")
	threshold := flag.Float64("threshold", 15, "compare mode: gated ns/op regression tolerance in percent")
	flag.Parse()

	fresh := readEntries()
	if *compare != "" {
		os.Exit(runCompare(fresh, *compare, *gate, *threshold))
	}

	doc := Doc{
		Schema: "cachecraft-bench/v1",
		Go:     runtime.Version(),
		Arch:   runtime.GOOS + "/" + runtime.GOARCH,
	}
	if *prev != "" {
		if raw, err := os.ReadFile(*prev); err == nil {
			var old Doc
			if err := json.Unmarshal(raw, &old); err == nil {
				doc.Baseline = old.Baseline
				doc.Note = old.Note
			}
		}
	}
	doc.Current = fresh

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

func readEntries() []Entry {
	var entries []Entry
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			entries = append(entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	return entries
}

// runCompare diffs fresh ns/op numbers against the committed document's
// "current" section. Every overlapping benchmark is reported; only the
// gated one decides the exit code.
func runCompare(fresh []Entry, file, gate string, threshold float64) int {
	raw, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", file, err)
		return 2
	}
	committed := make(map[string]float64, len(doc.Current))
	for _, e := range doc.Current {
		committed[e.Name] = e.Metrics["ns/op"]
	}

	code := 0
	gateSeen := false
	fmt.Printf("%-28s %14s %14s %8s\n", "benchmark", "committed", "fresh", "delta")
	for _, e := range fresh {
		was, ok := committed[e.Name]
		now := e.Metrics["ns/op"]
		if !ok || was <= 0 || now <= 0 {
			fmt.Printf("%-28s %14s %14.0f %8s\n", e.Name, "-", now, "new")
			continue
		}
		delta := (now - was) / was * 100
		mark := ""
		if e.Name == gate {
			gateSeen = true
			if delta > threshold {
				mark = "  REGRESSION (gate >" + strconv.FormatFloat(threshold, 'f', -1, 64) + "%)"
				code = 1
			}
		}
		fmt.Printf("%-28s %14.0f %14.0f %+7.1f%%%s\n", e.Name, was, now, delta, mark)
	}
	if !gateSeen {
		fmt.Fprintf(os.Stderr, "benchjson: gated benchmark %q missing from stdin or %s\n", gate, file)
		return 2
	}
	return code
}

// parseLine decodes one `go test -bench` result line:
//
//	BenchmarkName-8   1234   56.7 ns/op   3.2 MB/s   8 B/op   0 allocs/op
//
// Everything after the iteration count is (value, unit) pairs.
func parseLine(line string) (Entry, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Entry{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return Entry{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[f[i+1]] = v
	}
	return e, len(e.Metrics) > 0
}
