#!/usr/bin/env bash
# cluster_e2e.sh — end-to-end smoke of the distributed sweep cluster with
# real processes: a coordinator (cachecraft-serve -coordinator), two
# workers, and cachecraft-sweep -remote, asserting that remote stdout is
# byte-identical to a local run. A second round SIGKILLs a worker process
# that is holding leases and asserts the grid still completes —
# identically — with the recovery visible in /metrics.
#
# Usage:
#   scripts/cluster_e2e.sh           # quick grid (CI-sized)
#   RUN=fig4 scripts/cluster_e2e.sh  # a single experiment instead of 'all'
set -euo pipefail
cd "$(dirname "$0")/.."

run="${RUN:-all}"
work="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== building binaries ==" >&2
go build -o "$work/bin/" ./cmd/cachecraft-serve ./cmd/cachecraft-worker ./cmd/cachecraft-sweep

# Loopback ports unlikely to collide; derived from the PID so parallel
# invocations on one machine do not fight. Each round gets its own port
# so a previous round's processes can never answer for a fresh one.
port_base=$((20000 + $$ % 20000))

# Lines per cell is the invariant under test, so isolate each round in a
# fresh store; the local reference run uses no store at all.
echo "== local reference run ==" >&2
"$work/bin/cachecraft-sweep" -run "$run" -quick >"$work/local.out" 2>"$work/local.err"

round() { # round <name> <port-offset> <kill-a-worker: yes/no>
  local name="$1" kill_one="$3"
  local url="http://127.0.0.1:$((port_base + $2))"
  local round_pids=()
  echo "== round $name ==" >&2

  "$work/bin/cachecraft-serve" -addr "${url#http://}" -coordinator \
    -quick -store "$work/store-$name" -lease-ttl 2s -quiet \
    >"$work/serve-$name.log" 2>&1 &
  round_pids+=("$!")
  pids+=("$!")
  local healthy=no
  for _ in $(seq 1 100); do
    if curl -sf "$url/healthz" >/dev/null 2>&1; then
      healthy=yes
      break
    fi
    sleep 0.1
  done
  if [ "$healthy" != yes ]; then
    echo "FAIL: coordinator never became healthy on $url" >&2
    cat "$work/serve-$name.log" >&2 || true
    exit 1
  fi

  if [ "$kill_one" = yes ]; then
    # The grid is quick, so a timed kill races with completion. Instead
    # the victim is a real OS process that takes a lease through the
    # protocol and then sits on it; SIGKILL leaves the coordinator with
    # leased cells whose owner is gone — exactly a worker dying mid-run.
    # No other worker exists yet, so the leases are guaranteed taken.
    (
      for _ in $(seq 1 200); do
        code="$(curl -s -o "$work/victim-lease.json" -w '%{http_code}' \
          -X POST -H 'Content-Type: application/json' \
          -d '{"worker":"victim","max":2}' "$url/v1/cluster/lease" || true)"
        if [ "$code" = 200 ]; then
          touch "$work/victim-leased"
          break
        fi
        sleep 0.05
      done
      sleep 600
    ) &
    local victim_pid=$!
    round_pids+=("$victim_pid")
    pids+=("$victim_pid")

    # Cells only exist once a sweep is submitted, so start the remote
    # sweep first and let the victim grab its lease from the fresh grid.
    "$work/bin/cachecraft-sweep" -run "$run" -quick -remote "$url" \
      >"$work/remote-$name.out" 2>"$work/remote-$name.err" &
    local sweep_pid=$!
    for _ in $(seq 1 100); do
      [ -e "$work/victim-leased" ] && break
      sleep 0.1
    done
    if [ ! -e "$work/victim-leased" ]; then
      echo "FAIL: victim worker never obtained a lease" >&2
      exit 1
    fi
    kill -9 "$victim_pid" 2>/dev/null || true
  fi

  "$work/bin/cachecraft-worker" -coordinator "$url" -name "$name-w1" -quiet \
    >"$work/w1-$name.log" 2>&1 &
  round_pids+=("$!")
  pids+=("$!")
  "$work/bin/cachecraft-worker" -coordinator "$url" -name "$name-w2" -quiet \
    >"$work/w2-$name.log" 2>&1 &
  round_pids+=("$!")
  pids+=("$!")

  if [ "$kill_one" = yes ]; then
    wait "$sweep_pid"
  else
    "$work/bin/cachecraft-sweep" -run "$run" -quick -remote "$url" \
      >"$work/remote-$name.out" 2>"$work/remote-$name.err"
  fi

  if ! diff -u "$work/local.out" "$work/remote-$name.out" >&2; then
    echo "FAIL: round $name: remote stdout differs from local run" >&2
    exit 1
  fi

  if [ "$kill_one" = yes ]; then
    # The retries must be visible on the coordinator's metrics, and the
    # recovery must not have streamed any cell errors.
    local metrics
    metrics="$(curl -sf "$url/metrics")"
    if ! grep -q '^cachecraft_cluster_leases_expired_total [1-9]' <<<"$metrics"; then
      echo "FAIL: no expired lease recorded after killing a worker" >&2
      grep '^cachecraft_cluster' <<<"$metrics" >&2 || true
      exit 1
    fi
    if ! grep -q '^cachecraft_cluster_cells_retried_total [1-9]' <<<"$metrics"; then
      echo "FAIL: no cell retry recorded after killing a worker" >&2
      grep '^cachecraft_cluster' <<<"$metrics" >&2 || true
      exit 1
    fi
    if ! grep -q '^cachecraft_sweep_cell_errors_total 0$' <<<"$metrics"; then
      echo "FAIL: cell errors streamed during worker-death recovery" >&2
      grep 'cell_errors' <<<"$metrics" >&2 || true
      exit 1
    fi
  fi

  # Tear the round's processes down so they cannot touch a later round.
  for pid in "${round_pids[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  echo "round $name: OK (stdout byte-identical to local)" >&2
}

round healthy 0 no
round worker-death 1 yes
echo "cluster e2e: all rounds passed" >&2
